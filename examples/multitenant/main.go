// Multitenant pits CMCP against LRU and FIFO on a contended machine:
// 64 tenant address spaces share a frame pool sized to half their
// aggregate footprint while a Zipfian request driver concentrates
// traffic on a rotating hot set of tenants. Beyond the usual runtime
// and fault counts, multi-tenant runs report per-tenant tails — the
// p99 fault-service latency each tenant experiences — and Jain's
// fairness index over those tails, so the comparison answers the
// serving-fleet question: who keeps the slowest tenant fast?
//
// The same Config runs bit-identically on both engines; this demo uses
// the parallel one for speed and a weighted (non-partitioned) pool so
// the policies, not quotas, decide who loses frames.
package main

import (
	"fmt"
	"log"

	"cmcp"
)

func main() {
	const cores = 16
	spec := cmcp.DefaultTenantSpec(64, 1.2, 250) // 64 tenants, Zipf s=1.2, churn every 250 touches/core
	spec.TotalTouches = 96_000
	spec.DiurnalEvery = 3000 // alternate peak/trough skew phases

	policies := []cmcp.PolicySpec{
		{Kind: cmcp.CMCP, P: -1},
		{Kind: cmcp.LRU},
		{Kind: cmcp.FIFO},
	}
	var cfgs []cmcp.Config
	for _, pol := range policies {
		cfgs = append(cfgs, cmcp.Config{
			Cores:       cores,
			Tenants:     &spec,
			MemoryRatio: 0.5, // frames cover half the aggregate footprint
			Tables:      cmcp.PSPT,
			Policy:      pol,
			Seed:        7,
			Engine:      cmcp.ParallelEngine,
		})
	}
	results, err := cmcp.RunMany(cfgs, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s: %d tenants on %d cores, %d frames for %d pages\n\n",
		spec.Name(), spec.Tenants, cores, results[0].Frames, results[0].TotalPages)
	fmt.Printf("%-7s %10s %13s %10s %14s %14s\n",
		"policy", "Mcycles", "faults/core", "fairness", "worst p99(cyc)", "cross-evicts")
	for _, res := range results {
		ts := res.Run.Tenants
		var worstP99 uint64
		for t := 0; t < ts.Tenants(); t++ {
			if p := ts.FaultHist(t).Summarize().P99; p > worstP99 {
				worstP99 = p
			}
		}
		fmt.Printf("%-7s %10.1f %13.0f %10.3f %14d %14d\n",
			res.PolicyName,
			float64(res.Runtime)/1e6,
			res.Run.PerCoreAvg(cmcp.PageFaults),
			ts.FairnessIndex(),
			worstP99,
			ts.Total(cmcp.TenantEvictionsCaused))
	}
	fmt.Println("\nfairness = Jain's index over per-tenant p99 fault-service latency (1.0 = perfectly even tails)")
	fmt.Println("cross-evicts = evictions a tenant's faults forced onto other tenants' frames")
}
