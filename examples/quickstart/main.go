// Quickstart: simulate the SCALE climate stencil on a 56-core
// co-processor whose device memory holds only half the working set,
// and compare the paper's CMCP policy against the FIFO baseline.
package main

import (
	"fmt"
	"log"

	"cmcp"
)

func main() {
	base := cmcp.Config{
		Cores:       56,
		Workload:    cmcp.SCALE().Scale(0.25), // quarter footprint: runs in ~1s
		MemoryRatio: 0.5,                      // device RAM = half the footprint
		PageSize:    cmcp.Size4k,
		Tables:      cmcp.PSPT,
		Seed:        1,
	}

	fifo := base
	fifo.Policy = cmcp.PolicySpec{Kind: cmcp.FIFO}
	cmcpCfg := base
	cmcpCfg.Policy = cmcp.PolicySpec{Kind: cmcp.CMCP, P: 0.875}

	results, err := cmcp.RunMany([]cmcp.Config{fifo, cmcpCfg}, 0)
	if err != nil {
		log.Fatal(err)
	}

	for _, res := range results {
		fmt.Printf("%-5s runtime %7.1f Mcycles | %5.0f faults/core | %5.0f remote TLB invals/core\n",
			res.PolicyName,
			float64(res.Runtime)/1e6,
			res.Run.PerCoreAvg(cmcp.PageFaults),
			res.Run.PerCoreAvg(cmcp.RemoteTLBInvalidations))
	}
	speedup := float64(results[0].Runtime)/float64(results[1].Runtime) - 1
	fmt.Printf("\nCMCP is %.1f%% faster than FIFO on this configuration.\n", 100*speedup)
}
