// Pagesize explores the Xeon Phi's three mapping granularities — 4 kB,
// the experimental 64 kB PTE-group pages, and 2 MB — under growing
// memory constraint (the paper's Figure 10 question): large pages cut
// TLB misses but move more data per fault and widen sharing, so the
// best size depends on how memory-constrained the system is.
package main

import (
	"fmt"
	"log"

	"cmcp"
)

func main() {
	spec := cmcp.BT().Scale(0.5)
	sizes := []cmcp.PageSize{cmcp.Size4k, cmcp.Size64k, cmcp.Size2M}
	ratios := []float64{1.0, 0.98, 0.95, 0.9, 0.8, 0.6, 0.4}

	var cfgs []cmcp.Config
	for _, size := range sizes {
		for _, r := range ratios {
			cfgs = append(cfgs, cmcp.Config{
				Cores:       56,
				Workload:    spec,
				MemoryRatio: r,
				PageSize:    size,
				Tables:      cmcp.PSPT,
				Policy:      cmcp.PolicySpec{Kind: cmcp.FIFO},
				Seed:        11,
			})
		}
	}
	results, err := cmcp.RunMany(cfgs, 0)
	if err != nil {
		log.Fatal(err)
	}

	base := float64(results[0].Runtime) // 4 kB, full memory
	fmt.Printf("%s relative performance by page size (FIFO, 56 cores)\n\n", spec.Name)
	fmt.Printf("%-8s", "memory")
	for _, size := range sizes {
		fmt.Printf("%8s", size)
	}
	fmt.Println()
	for ri, r := range ratios {
		fmt.Printf("%6.0f%% ", r*100)
		best, bestV := 0, 0.0
		row := make([]float64, len(sizes))
		for si := range sizes {
			v := base / float64(results[si*len(ratios)+ri].Runtime)
			row[si] = v
			if v > bestV {
				best, bestV = si, v
			}
		}
		for si, v := range row {
			mark := " "
			if si == best {
				mark = "*"
			}
			fmt.Printf("%7.2f%s", v, mark)
		}
		fmt.Println()
	}
	fmt.Println("\n(*) best size at that constraint — watch the winner move from")
	fmt.Println("large to small pages as memory tightens.")
}
