// Oracle records a workload's page-access trace and compares the
// online replacement policies' fault counts against Belady's optimal
// (MIN) — the clairvoyant lower bound. It shows where CMCP's gains come
// from: CMCP cannot approach true LRU's fault count (it never sees
// references), yet it beats FIFO — and at *runtime* it beats LRU too,
// because its statistics are free while LRU's cost TLB shootdowns.
package main

import (
	"fmt"
	"log"

	"cmcp"
)

func main() {
	wl := cmcp.SCALE().Scale(0.1)
	tr, err := cmcp.CaptureTrace(wl, 16, 42)
	if err != nil {
		log.Fatal(err)
	}
	footprint := int(tr.MaxVPN()) + 1
	capacity := footprint / 2
	fmt.Printf("%s: %d accesses over %d pages, capacity %d pages (50%%)\n\n",
		wl.Name, len(tr.Records), footprint, capacity)

	opt, err := cmcp.OPTFaults(tr, capacity, cmcp.Size4k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-18s %8d faults   [clairvoyant lower bound]\n", "OPT (Belady)", opt.Faults)

	policies := []struct {
		name string
		pol  cmcp.CountingPolicy
	}{
		{"true LRU", cmcp.NewTrueLRUPolicy()},
		{"CMCP (p=0.875)", cmcp.NewCMCPPolicy(sharingOracle{}, capacity, 0.875)},
		{"FIFO", cmcp.NewFIFOPolicy()},
	}
	for _, pc := range policies {
		faults, err := cmcp.CountPolicyFaults(tr, capacity, cmcp.Size4k, pc.pol)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-18s %8d faults   (%.2fx OPT)\n",
			pc.name, faults, float64(faults)/float64(opt.Faults))
	}
	fmt.Println("\nFault counts ignore the cost of *collecting* usage statistics —")
	fmt.Println("at runtime that cost inverts the LRU/FIFO order (see Figure 7).")
}

// sharingOracle approximates PSPT's core-map counts for offline replay:
// it does not track real sharing, so every page reads as two-core
// (CMCP then orders by reference recency of its admission attempts).
type sharingOracle struct{}

func (sharingOracle) CoreMapCount(cmcp.PageID) int  { return 2 }
func (sharingOracle) ScanAccessed(cmcp.PageID) bool { return false }
