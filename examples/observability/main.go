// Observability records flight-recorder traces of the same run under
// CMCP and LRU and prints *when* their eviction behaviour diverges —
// the time-resolved view behind the paper's Table 1 aggregates.
//
// The aggregate story: LRU's access-bit scanning buys a lower fault
// count but pays for it with remote-TLB-invalidation storms. The
// timeline below shows the mechanism directly: LRU's shootdowns arrive
// in scanner-driven bursts throughout the run, while CMCP's only TLB
// traffic is the precise, small shootdowns of its own evictions.
package main

import (
	"fmt"
	"log"

	"cmcp"
)

const buckets = 12

// phase aggregates one policy's events into time buckets.
type phase struct {
	evictions  [buckets]uint64
	shootdowns [buckets]uint64 // target cores interrupted
	promotions [buckets]uint64
}

func record(kind cmcp.PolicyKind) (*cmcp.Result, []cmcp.TraceEvent, error) {
	rec := cmcp.NewRecorder(cmcp.RecorderConfig{Events: 1 << 20})
	res, err := cmcp.Simulate(cmcp.Config{
		Cores:       56,
		Workload:    cmcp.CG().Scale(0.1),
		MemoryRatio: cmcp.Constraint("cg.B"),
		Tables:      cmcp.PSPT,
		Policy:      cmcp.PolicySpec{Kind: kind, P: -1},
		Seed:        7,
		Probe:       rec,
		Hist:        true, // latency distributions alongside the trace
	})
	if err != nil {
		return nil, nil, err
	}
	return res, rec.Events(), nil
}

func bucketize(events []cmcp.TraceEvent, span cmcp.Cycles) *phase {
	p := &phase{}
	for _, e := range events {
		i := int(e.Time / span)
		if i >= buckets {
			i = buckets - 1
		}
		switch e.Type {
		case cmcp.EvEviction:
			p.evictions[i]++
		case cmcp.EvShootdown:
			p.shootdowns[i] += uint64(e.Arg)
		case cmcp.EvPromotion:
			p.promotions[i]++
		}
	}
	return p
}

func main() {
	cmcpRes, cmcpEvents, err := record(cmcp.CMCP)
	if err != nil {
		log.Fatal(err)
	}
	lruRes, lruEvents, err := record(cmcp.LRU)
	if err != nil {
		log.Fatal(err)
	}

	// One shared bucket width so rows line up: span of the longer trace.
	horizon := cmcpEvents[len(cmcpEvents)-1].Time
	if t := lruEvents[len(lruEvents)-1].Time; t > horizon {
		horizon = t
	}
	span := horizon/buckets + 1
	cp := bucketize(cmcpEvents, span)
	lp := bucketize(lruEvents, span)

	fmt.Printf("CMCP vs LRU on cg.B (56 cores, %.0f%% memory): eviction timeline\n",
		100*cmcp.Constraint("cg.B"))
	fmt.Printf("bucket = %.2f Mcycles; shootdowns count interrupted target cores\n\n", float64(span)/1e6)
	fmt.Printf("%8s  %22s  %22s  %s\n", "", "evictions (CMCP/LRU)", "shootdowns (CMCP/LRU)", "")
	for i := 0; i < buckets; i++ {
		note := ""
		if lp.shootdowns[i] > 4*cp.shootdowns[i]+100 {
			note = "<- LRU scanner storm"
		}
		if cp.promotions[i] > 0 && i == 0 {
			note += " (CMCP priority group filling)"
		}
		fmt.Printf("[%3d]     %10d / %-10d %10d / %-10d %s\n",
			i, cp.evictions[i], lp.evictions[i], cp.shootdowns[i], lp.shootdowns[i], note)
	}

	fmt.Printf("\naggregates (per core):\n")
	fmt.Printf("%-22s %12s %12s\n", "", "CMCP", "LRU")
	fmt.Printf("%-22s %12.0f %12.0f\n", "page faults",
		cmcpRes.Run.PerCoreAvg(cmcp.PageFaults), lruRes.Run.PerCoreAvg(cmcp.PageFaults))
	fmt.Printf("%-22s %12.0f %12.0f\n", "remote invalidations",
		cmcpRes.Run.PerCoreAvg(cmcp.RemoteTLBInvalidations), lruRes.Run.PerCoreAvg(cmcp.RemoteTLBInvalidations))
	fmt.Printf("%-22s %12.2f %12.2f\n", "runtime (Mcycles)",
		float64(cmcpRes.Runtime)/1e6, float64(lruRes.Runtime)/1e6)

	// The latency histograms show the same mechanism as a distribution.
	// Quantiles are log2-bucket upper bounds (exact, deterministic).
	cs := cmcpRes.Run.Hists.Get(cmcp.FaultServiceHist).Summarize()
	ls := lruRes.Run.Hists.Get(cmcp.FaultServiceHist).Summarize()
	cw := cmcpRes.Run.Hists.Get(cmcp.LockWaitHist).Summarize()
	lw := lruRes.Run.Hists.Get(cmcp.LockWaitHist).Summarize()
	fmt.Printf("\nlatency distributions (cycles, log2-bucket upper bounds):\n")
	fmt.Printf("%-34s %12s %12s\n", "", "CMCP", "LRU")
	fmt.Printf("%-34s %12d %12d\n", "fault service: count", cs.Count, ls.Count)
	fmt.Printf("%-34s %12.0f %12.0f\n", "fault service: mean", cs.Mean, ls.Mean)
	fmt.Printf("%-34s %12d %12d\n", "fault service: p99", cs.P99, ls.P99)
	fmt.Printf("%-34s %12d %12d\n", "fault service: max", cs.Max, ls.Max)
	fmt.Printf("%-34s %12d %12d\n", "lock wait: count", cw.Count, lw.Count)
	fmt.Printf("%-34s %12.0f %12.0f\n", "lock wait: mean", cw.Mean, lw.Mean)
	fmt.Printf("%-34s %12d %12d\n", "lock wait: p90", cw.P90, lw.P90)
	fmt.Printf("%-34s %12d %12d\n", "lock wait: p99", cw.P99, lw.P99)
	if cs.P99 > 0 && cw.P99 > 0 {
		fmt.Printf("\np99 divergence (LRU/CMCP): fault service %.2fx, lock wait %.2fx\n",
			float64(ls.P99)/float64(cs.P99), float64(lw.P99)/float64(cw.P99))
		fmt.Printf("max fault-service divergence: %.2fx\n", float64(ls.Max)/float64(cs.Max))
	}

	fmt.Println("\nLRU may fault less, yet every scan bucket above costs it remote")
	fmt.Println("invalidations CMCP never issues. A major fault's p99 is pinned")
	fmt.Println("by the fixed PCIe copy (both policies land in the same bucket);")
	fmt.Println("the contention LRU adds shows up where it happens — the lock-wait")
	fmt.Println("tail stretches by an order of magnitude, and the worst fault")
	fmt.Println("(max above) waits behind it.")
}
