// Faultinjection runs the same CMCP configuration under increasing
// device fault rates and shows what surviving faults costs: the
// recovery work (retries, rollbacks, re-sent shootdowns), the capacity
// lost to quarantined frames, and the runtime impact — all fully
// deterministic, so a crash found at one seed replays exactly.
//
// The zero-rate row doubles as the determinism guarantee: attaching an
// injector whose rates are all zero never draws a random number, so it
// is bit-identical to not attaching one at all.
package main

import (
	"fmt"
	"log"

	"cmcp"
)

func run(rate float64) (*cmcp.Result, error) {
	cfg := cmcp.Config{
		Cores:       56,
		Workload:    cmcp.SCALE().Scale(0.5),
		MemoryRatio: 0.3,
		Tables:      cmcp.PSPT,
		Policy:      cmcp.PolicySpec{Kind: cmcp.CMCP, P: -1},
		Seed:        7,
	}
	if rate > 0 {
		cfg.Faults = cmcp.UniformFaults(99, rate)
	}
	return cmcp.Simulate(cfg)
}

func main() {
	baseline, err := run(0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("CMCP on SCALE, 56 cores, device holds 30% of the footprint.")
	fmt.Println("Every fault kind injected at the same per-event rate:")
	fmt.Println()
	fmt.Printf("%10s %12s %9s %9s %9s %12s %12s %9s\n",
		"rate", "runtime(Mc)", "injected", "retries", "rollback", "resent_IPIs", "quarantined", "slowdown")
	for _, rate := range []float64{0, 1e-5, 1e-4} {
		res, err := run(rate)
		if err != nil {
			log.Fatalf("rate %g: %v", rate, err)
		}
		r := res.Run
		fmt.Printf("%10.0e %12.2f %9d %9d %9d %12d %12d %8.2fx\n",
			rate,
			float64(res.Runtime)/1e6,
			r.Total(cmcp.FaultsInjected),
			r.Total(cmcp.RecoveryRetries),
			r.Total(cmcp.TxRollbacks),
			r.Total(cmcp.ResentShootdowns),
			res.Quarantined,
			float64(res.Runtime)/float64(baseline.Runtime))
	}

	fmt.Println()
	fmt.Println("The run survives every injected fault: transient transfer failures")
	fmt.Println("roll the page-in transaction back and retry under capped backoff,")
	fmt.Println("corrupt frames are quarantined (the device simply shrinks), and")
	fmt.Println("dropped shootdown acks are re-sent after a timeout. Without the")
	fmt.Println("recovery machinery any one of these would abort the run.")
}
